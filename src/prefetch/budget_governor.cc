#include "src/prefetch/budget_governor.h"

#include <algorithm>
#include <cmath>

#include "src/paging/swap_manager.h"

namespace leap {

BudgetGovernor::BudgetGovernor(const PrefetchBudgetConfig& config,
                               const SwapManager* swap)
    : config_(config), swap_(swap) {
  // Sanitize the bounds once so every later std::clamp(lo, hi) holds its
  // precondition: budgets live in [1, kMaxPrefetchCandidates] and
  // min <= max.
  config_.min_budget =
      std::clamp<size_t>(config_.min_budget, 1, kMaxPrefetchCandidates);
  config_.max_budget = std::clamp<size_t>(
      config_.max_budget, config_.min_budget, kMaxPrefetchCandidates);
}

BudgetGovernor::Tenant* BudgetGovernor::TenantFor(Pid pid) {
  auto [tenant, inserted] = tenants_.Emplace(pid);
  if (inserted) {
    tenant->budget = static_cast<double>(config_.max_budget);
  }
  return &*tenant;
}

size_t BudgetGovernor::CapFor(Pid pid) const {
  if (swap_ == nullptr || tenants_.size() < 2) {
    return config_.max_budget;
  }
  const size_t total = swap_->allocated_slots();
  if (total == 0) {
    return config_.max_budget;
  }
  // Footprint-proportional ceiling, normalized so equal shares yield
  // max_budget each: cap_i = max * (slots_i / total) * n_tenants. A tenant
  // holding less than its 1/n share of the swapped working set gets a
  // proportionally lower ceiling.
  const double share = static_cast<double>(swap_->SlotsOf(pid)) /
                       static_cast<double>(total);
  const double scaled = static_cast<double>(config_.max_budget) * share *
                        static_cast<double>(tenants_.size());
  const double capped =
      std::min(scaled, static_cast<double>(config_.max_budget));
  const auto cap = static_cast<size_t>(std::ceil(capped));
  return std::clamp(cap, config_.min_budget, config_.max_budget);
}

void BudgetGovernor::AdjustEpoch(SimTimeNs now,
                                 const CongestionSignals& signals) {
  if (now < last_adjust_ + config_.adjust_period_ns) {
    return;
  }
  last_adjust_ = now;
  ++epochs_;
  const uint64_t recent_exhausted =
      signals.capacity_exhausted_total - last_exhausted_total_;
  last_exhausted_total_ = signals.capacity_exhausted_total;
  // Key on the demand/prefetch (data-class) queue-delay EWMAs only: the
  // aggregate EWMA also counts writeback/eviction/repair ops, so a repair
  // storm after a node failure would otherwise read as data-path
  // congestion and throttle tenants whose prefetches are not the problem.
  congested_ =
      signals.DataQueueDelayNs() > config_.queue_delay_threshold_ns ||
      recent_exhausted >= config_.capacity_exhausted_threshold;

  for (auto [pid, tenant] : tenants_) {
    if (congested_) {
      if (tenant.issued > 0) {
        const double accuracy = static_cast<double>(tenant.hits) /
                                static_cast<double>(tenant.issued);
        // Drops are the lagging half of the waste evidence: pages issued
        // in earlier epochs dying unconsumed now (so the ratio may exceed
        // 1 - it is a trigger, not a fraction of this epoch's issues).
        const double drop_ratio = static_cast<double>(tenant.dropped) /
                                  static_cast<double>(tenant.issued);
        if (accuracy < config_.accuracy_keep_threshold ||
            drop_ratio > 1.0 - config_.accuracy_keep_threshold) {
          // Wasteful under congestion: multiplicative decrease.
          tenant.budget *= config_.decrease_factor;
          ++shrink_events_;
        }
        // Accurate tenants hold their window: their prefetches are
        // spending the fabric well; the waste is someone else's.
      }
    } else if (tenant.budget <
               static_cast<double>(config_.max_budget)) {
      // Calm epoch: additive recovery.
      tenant.budget += config_.increase_step;
      ++grow_events_;
    }
    tenant.budget = std::clamp(tenant.budget,
                               static_cast<double>(config_.min_budget),
                               static_cast<double>(config_.max_budget));
    tenant.issued = 0;
    tenant.hits = 0;
    tenant.dropped = 0;
  }
}

size_t BudgetGovernor::BudgetFor(Pid pid, SimTimeNs now,
                                 const CongestionSignals& signals) {
  AdjustEpoch(now, signals);
  Tenant* tenant = TenantFor(pid);
  // The footprint-share ceiling binds only while the fabric is congested:
  // budgets are a contention-arbitration mechanism, and a small tenant on
  // a calm fabric must not be crushed for being small.
  const size_t cap = congested_ ? CapFor(pid) : config_.max_budget;
  const double capped = std::min(tenant->budget, static_cast<double>(cap));
  return static_cast<size_t>(
      std::max(capped, static_cast<double>(config_.min_budget)));
}

void BudgetGovernor::OnPrefetchIssued(Pid pid, size_t pages) {
  TenantFor(pid)->issued += pages;
}

void BudgetGovernor::OnPrefetchHit(Pid pid) {
  if (Tenant* tenant = tenants_.Find(pid)) {
    ++tenant->hits;
  }
}

void BudgetGovernor::OnPrefetchDropped(Pid pid) {
  if (Tenant* tenant = tenants_.Find(pid)) {
    ++tenant->dropped;
  }
}

double BudgetGovernor::budget(Pid pid) const {
  const Tenant* tenant = tenants_.Find(pid);
  return tenant == nullptr ? static_cast<double>(config_.max_budget)
                           : tenant->budget;
}

uint64_t BudgetGovernor::epoch_issued(Pid pid) const {
  const Tenant* tenant = tenants_.Find(pid);
  return tenant == nullptr ? 0 : tenant->issued;
}

uint64_t BudgetGovernor::epoch_hits(Pid pid) const {
  const Tenant* tenant = tenants_.Find(pid);
  return tenant == nullptr ? 0 : tenant->hits;
}

uint64_t BudgetGovernor::epoch_dropped(Pid pid) const {
  const Tenant* tenant = tenants_.Find(pid);
  return tenant == nullptr ? 0 : tenant->dropped;
}

}  // namespace leap
