#include "src/prefetch/stride.h"

#include <algorithm>

namespace leap {

CandidateVec StridePrefetcher::OnFault(const FaultContext& ctx) {
  const SwapSlot slot = ctx.slot;
  Stream& s = streams_[ctx.pid];
  CandidateVec pages;

  if (s.last != kInvalidSlot) {
    const PageDelta d =
        static_cast<PageDelta>(slot) - static_cast<PageDelta>(s.last);
    if (d != 0 && d == s.stride) {
      // Stride repeated: (re)confirm and adapt depth to recent accuracy.
      if (s.confirmed) {
        if (s.hits_since_issue > 0) {
          s.depth = std::min(max_depth_, s.depth * 2);
        } else {
          s.depth = std::max<size_t>(1, s.depth / 2);
        }
      } else {
        s.confirmed = true;
        s.depth = std::max<size_t>(1, s.depth);
      }
      s.hits_since_issue = 0;
      int64_t addr = static_cast<int64_t>(slot);
      for (size_t i = 0; i < s.depth; ++i) {
        addr += d;
        if (addr < 0) {
          break;
        }
        pages.push_back(static_cast<SwapSlot>(addr));
      }
    } else {
      // Strict detection: any break kills the stream immediately.
      s.stride = d;
      s.confirmed = false;
      s.depth = std::max<size_t>(1, s.depth / 2);
    }
  }
  s.last = slot;
  return pages;
}

void StridePrefetcher::OnPrefetchHit(Pid pid, SwapSlot, SimTimeNs) {
  ++streams_[pid].hits_since_issue;
}

}  // namespace leap
