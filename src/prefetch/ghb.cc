#include "src/prefetch/ghb.h"

#include <algorithm>

namespace leap {

GhbPrefetcher::GhbPrefetcher(const GhbConfig& config) : config_(config) {
  buffer_.reserve(config_.buffer_size);
}

CandidateVec GhbPrefetcher::OnFault(const FaultContext& ctx) {
  const Pid pid = ctx.pid;
  const SwapSlot slot = ctx.slot;
  CandidateVec candidates;

  SwapSlot* last = last_addr_.Find(pid);
  if (last == nullptr) {
    last_addr_[pid] = slot;
    return candidates;
  }
  const PageDelta delta =
      static_cast<PageDelta>(slot) - static_cast<PageDelta>(*last);
  *last = slot;

  const PageDelta* prev_it = last_delta_.Find(pid);
  const bool have_pair = prev_it != nullptr;
  const PageDelta prev_delta = have_pair ? *prev_it : 0;
  last_delta_[pid] = delta;

  // Record the new delta into the global buffer, linking same-signature
  // occurrences (signature = the delta pair that PRECEDED this entry).
  size_t pos = head_;
  Entry entry;
  entry.delta = delta;
  if (have_pair) {
    const uint64_t sig = Signature(prev_delta, delta);
    const size_t* idx = index_.Find(sig);
    entry.prev = idx == nullptr ? kNoLink : *idx;
    index_[sig] = pos;
  }
  if (buffer_.size() < config_.buffer_size) {
    buffer_.push_back(entry);
  } else {
    buffer_[head_] = entry;
    full_ = true;
  }
  head_ = (head_ + 1) % config_.buffer_size;

  if (!have_pair) {
    return candidates;
  }

  // Correlate: find past occurrences of the current delta pair and replay
  // the deltas that followed them.
  const uint64_t sig = Signature(prev_delta, delta);
  const size_t* idx = index_.Find(sig);
  if (idx == nullptr) {
    return candidates;
  }
  size_t chains = 0;
  size_t link = *idx;
  while (link != kNoLink && chains < config_.max_chains &&
         !candidates.full()) {
    // Replay up to `degree` deltas following position `link`.
    int64_t addr = static_cast<int64_t>(slot);
    for (size_t step = 1; step <= config_.degree; ++step) {
      const size_t next_pos = (link + step) % config_.buffer_size;
      if (next_pos == head_ || (next_pos >= buffer_.size() && !full_)) {
        break;
      }
      if (next_pos >= buffer_.size()) {
        break;
      }
      addr += buffer_[next_pos].delta;
      if (addr < 0 || candidates.full()) {
        break;
      }
      candidates.push_back(static_cast<SwapSlot>(addr));
    }
    if (link >= buffer_.size()) {
      break;
    }
    const size_t next_link = buffer_[link].prev;
    if (next_link == link) {
      break;
    }
    link = next_link;
    ++chains;
  }
  // Dedup while preserving order.
  CandidateVec unique;
  for (SwapSlot s : candidates) {
    if (s != slot &&
        std::find(unique.begin(), unique.end(), s) == unique.end()) {
      unique.push_back(s);
    }
  }
  return unique;
}

}  // namespace leap
