// Stride prefetcher (Baer & Chen style, per-process): detects a repeated
// constant stride from the last two accesses and prefetches along it. Its
// aggressiveness (depth) scales with recent prefetch accuracy, as in the
// paper's description. Strict two-sample detection means one irregular
// access resets the stream - the brittleness Leap's majority vote fixes.
#ifndef LEAP_SRC_PREFETCH_STRIDE_H_
#define LEAP_SRC_PREFETCH_STRIDE_H_

#include "src/container/flat_map.h"
#include "src/prefetch/prefetcher.h"

namespace leap {

class StridePrefetcher : public PrefetchPolicy {
 public:
  explicit StridePrefetcher(size_t max_depth = 8)
      : max_depth_(max_depth < kMaxPrefetchCandidates ? max_depth
                                                      : kMaxPrefetchCandidates) {}

  CandidateVec OnFault(const FaultContext& ctx) override;
  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs timeliness) override;
  std::string_view name() const override { return "stride"; }

 private:
  struct Stream {
    SwapSlot last = kInvalidSlot;
    PageDelta stride = 0;
    bool confirmed = false;   // stride seen twice in a row
    size_t depth = 1;         // current aggressiveness
    uint64_t hits_since_issue = 0;
  };

  size_t max_depth_;
  FlatMap<Pid, Stream> streams_;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_STRIDE_H_
