// Adapts the Leap core (ProcessPageTracker + per-process LeapPrefetcher)
// to the generic Prefetcher interface used by the simulated data paths.
#ifndef LEAP_SRC_PREFETCH_LEAP_ADAPTER_H_
#define LEAP_SRC_PREFETCH_LEAP_ADAPTER_H_

#include "src/core/leap.h"
#include "src/prefetch/prefetcher.h"

namespace leap {

class LeapAdapter : public PrefetchPolicy {
 public:
  explicit LeapAdapter(const LeapParams& params = LeapParams())
      : tracker_(params) {}

  CandidateVec OnFault(const FaultContext& ctx) override {
    last_decision_ = tracker_.OnFault(ctx.pid, ctx.slot);
    return last_decision_.pages;
  }

  // Leap tracks cache look-ups, not just misses (section 4.1).
  void OnCacheAccess(Pid pid, SwapSlot slot) override {
    tracker_.OnCacheAccess(pid, slot);
  }

  void OnPrefetchHit(Pid pid, SwapSlot slot, SimTimeNs) override {
    tracker_.OnPrefetchHit(pid, slot);
  }

  std::string_view name() const override { return "leap"; }

  // Introspection for tests and the pattern-explorer example.
  const PrefetchDecision& last_decision() const { return last_decision_; }
  ProcessPageTracker& tracker() { return tracker_; }

 private:
  ProcessPageTracker tracker_;
  PrefetchDecision last_decision_;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_LEAP_ADAPTER_H_
