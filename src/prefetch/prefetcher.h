// PrefetchPolicy v2: context-rich, feedback-driven prefetch interface.
//
// v1 was a context-free candidate generator - OnFault(pid, slot) saw no
// clock, no memory pressure, no fabric state, and never learned whether its
// prefetches completed, hit, or were evicted unconsumed. v2 drives every
// policy (Leap and the section 5.2.3 baselines: Next-N-Line, Stride, Linux
// Read-Ahead, plus GHB) through a FaultContext carrying the machine and
// cluster state a policy may condition on, and closes the loop with a full
// outcome-feedback path wired from the page-cache lifecycle. See
// src/prefetch/README.md for the contract.
#ifndef LEAP_SRC_PREFETCH_PREFETCHER_H_
#define LEAP_SRC_PREFETCH_PREFETCHER_H_

#include <string_view>

#include "src/sim/types.h"

namespace leap {

// Everything a prefetch policy may condition one decision on. The
// CongestionSignals snapshot (src/sim/types.h) is published by HostAgent:
// fabric-bound hosts see the shared fabric's state; standalone hosts see
// zeros. The two-arg
// constructor exists so unit tests and decision-cost benches can drive a
// policy without a machine: OnFault({pid, slot}).
struct FaultContext {
  Pid pid = 0;
  SwapSlot slot = kInvalidSlot;
  // Absolute simulated time of the fault.
  SimTimeNs now = 0;
  // Free-frame pressure: frames available / total DRAM frames.
  size_t free_frames = 0;
  size_t total_frames = 0;
  // Prefetched cache pages not yet hit (pollution currently at risk).
  size_t inflight_prefetches = 0;
  // Candidate cap the budget governor will enforce for this fault
  // (kMaxPrefetchCandidates when no governor is active). Policies can use
  // it to stop generating candidates that would be clamped anyway.
  size_t budget_remaining = kMaxPrefetchCandidates;
  CongestionSignals congestion;

  FaultContext() = default;
  FaultContext(Pid p, SwapSlot s, SimTimeNs t = 0)
      : pid(p), slot(s), now(t) {}
};

class PrefetchPolicy {
 public:
  virtual ~PrefetchPolicy() = default;

  // Called on every cache MISS (the swapin_readahead position in the fault
  // path). Returns backing-store offsets to prefetch alongside the demand
  // page; never includes ctx.slot itself. The result is a fixed-capacity
  // inline vector (no heap allocation); implementations clamp their
  // aggressiveness knobs to kMaxPrefetchCandidates.
  virtual CandidateVec OnFault(const FaultContext& ctx) = 0;

  // Called on every remote access served from the page cache. Leap's page
  // access tracker hooks do_swap_page, so its delta history sees hits too
  // (section 4.1); legacy policies ignore this.
  virtual void OnCacheAccess(Pid, SwapSlot) {}

  // --- outcome feedback ---------------------------------------------------
  // The machine's cache lifecycle reports what became of every prefetch
  // this policy asked for. Exactly one of Hit / Dropped eventually follows
  // each Issued; Complete always follows Issued (in the discrete-event
  // simulation the completion time is known at issue, so Complete fires
  // immediately after Issued with the prefetch's I/O latency).

  // A candidate survived filtering+budget and its read was submitted.
  virtual void OnPrefetchIssued(Pid, SwapSlot, SimTimeNs /*now*/) {}
  // The prefetch read finished `latency` ns after issue.
  virtual void OnPrefetchComplete(Pid, SwapSlot, SimTimeNs /*latency*/) {}
  // First hit on a prefetched page; `timeliness` = inserted -> first hit
  // (the Figure 10b quantity). A small value means the demand access
  // arrived before (or shortly after) the data - prefetching barely ahead
  // of need, the 3PO timing signal.
  virtual void OnPrefetchHit(Pid, SwapSlot, SimTimeNs /*timeliness*/) {}
  // The page was evicted without ever being hit: pure pollution.
  virtual void OnPrefetchDropped(Pid, SwapSlot) {}

  // Stable policy name; must view a string with static storage duration
  // (stats paths call this per row and must not allocate).
  virtual std::string_view name() const = 0;
};

// Null policy: demand paging only.
class NoPrefetcher : public PrefetchPolicy {
 public:
  CandidateVec OnFault(const FaultContext&) override { return {}; }
  std::string_view name() const override { return "none"; }
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_PREFETCHER_H_
