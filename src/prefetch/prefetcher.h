// Prefetcher interface shared by Leap and the three baselines the paper
// evaluates against (section 5.2.3): Next-N-Line, Stride, and Linux
// Read-Ahead.
#ifndef LEAP_SRC_PREFETCH_PREFETCHER_H_
#define LEAP_SRC_PREFETCH_PREFETCHER_H_

#include <string>

#include "src/sim/types.h"

namespace leap {

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  // Called on every cache MISS (the swapin_readahead position in the fault
  // path). Returns backing-store offsets to prefetch alongside the demand
  // page; never includes `slot` itself. The result is a fixed-capacity
  // inline vector (no heap allocation); implementations clamp their
  // aggressiveness knobs to kMaxPrefetchCandidates.
  virtual CandidateVec OnFault(Pid pid, SwapSlot slot) = 0;

  // Called on every remote access served from the page cache. Leap's page
  // access tracker hooks do_swap_page, so its delta history sees hits too
  // (section 4.1); legacy prefetchers ignore this.
  virtual void OnCacheAccess(Pid, SwapSlot) {}

  // Notification that a page this prefetcher brought in got its first hit.
  virtual void OnPrefetchHit(Pid pid, SwapSlot slot) = 0;

  virtual std::string name() const = 0;
};

// Null prefetcher: demand paging only.
class NoPrefetcher : public Prefetcher {
 public:
  CandidateVec OnFault(Pid, SwapSlot) override { return {}; }
  void OnPrefetchHit(Pid, SwapSlot) override {}
  std::string name() const override { return "none"; }
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_PREFETCHER_H_
