// GHB-style delta-correlation prefetcher (Nesbit & Smith, "Data Cache
// Prefetching Using a Global History Buffer").
//
// Keeps a global circular buffer of recent fault deltas plus an index from
// delta-pair signatures to the positions where they occurred. On a fault it
// looks up the last two deltas and replays the deltas that historically
// followed that pair. Table 1 of the paper lists GHB as accurate but
// heavier than Leap: state is O(buffer + index) per device (vs Leap's O(1)
// per process) and every fault does correlation lookups. Implemented as a
// baseline so the Table 1 bench can measure that overhead gap directly.
#ifndef LEAP_SRC_PREFETCH_GHB_H_
#define LEAP_SRC_PREFETCH_GHB_H_

#include <cstdint>
#include <vector>

#include "src/container/flat_map.h"
#include "src/prefetch/prefetcher.h"

namespace leap {

struct GhbConfig {
  size_t buffer_size = 256;  // global history entries
  size_t degree = 4;         // deltas replayed per prediction
  size_t max_chains = 2;     // correlation chains followed per fault
};

class GhbPrefetcher : public PrefetchPolicy {
 public:
  explicit GhbPrefetcher(const GhbConfig& config = GhbConfig());

  CandidateVec OnFault(const FaultContext& ctx) override;
  std::string_view name() const override { return "ghb"; }

  size_t buffer_entries() const { return buffer_.size(); }

 private:
  struct Entry {
    PageDelta delta = 0;
    // Previous buffer position with the same signature (link list).
    size_t prev = kNoLink;
  };
  static constexpr size_t kNoLink = static_cast<size_t>(-1);

  static uint64_t Signature(PageDelta a, PageDelta b) {
    return static_cast<uint64_t>(a) * 1000003ULL ^ static_cast<uint64_t>(b);
  }

  GhbConfig config_;
  std::vector<Entry> buffer_;  // circular
  size_t head_ = 0;
  bool full_ = false;
  FlatMap<uint64_t, size_t> index_;  // signature -> newest pos
  FlatMap<Pid, SwapSlot> last_addr_;
  FlatMap<Pid, PageDelta> last_delta_;
};

}  // namespace leap

#endif  // LEAP_SRC_PREFETCH_GHB_H_
