// Unified I/O descriptor: one tagged record per page op, carried end to end
// through the data path (Machine/DataPath -> RequestQueue -> BackingStore /
// HostAgent -> RdmaNic -> Fabric -> RemoteAgent).
//
// Before this header existed, the path threaded ad-hoc positional
// parameters (a bare SwapSlot span plus "the demand page is index 0 by
// convention", enforced only by asserts and comments), so no layer below
// the fault handler could tell a demand fetch from a prefetch, a writeback
// from repair traffic. The descriptor makes the class explicit at every
// hop, which is what lets the fabric's per-link schedulers keep prefetch
// and repair storms off the demand-fetch critical path (the paper's
// section 4 claim; see src/cluster/link_scheduler.h) and lets congestion
// telemetry be reported per class instead of as one mixed signal.
#ifndef LEAP_SRC_SIM_IO_REQUEST_H_
#define LEAP_SRC_SIM_IO_REQUEST_H_

#include <cstdint>

#include "src/sim/types.h"

namespace leap {

// Traffic class of one page op. Order matters: kDemandRead must stay first
// (schedulers treat it as the top priority class) and the enum indexes the
// per-class accounting arrays.
enum class IoClass : uint8_t {
  kDemandRead = 0,  // a faulting process is blocked on this page
  kPrefetch,        // speculative read issued alongside a demand fetch
  kWriteback,       // dirty file/cache page flushed to the backing store
  kEviction,        // swap-out of a reclaimed dirty anonymous page
  kRepair,          // re-replication traffic after a node failure
  kHedge,           // duplicate read racing a suspect replica (tail cutting)
  kMigration,       // background tier promotion/demotion copy (src/tier/)
};

inline constexpr size_t kIoClassCount = 7;

// The one IoClass -> string mapping. Every reporting surface (trace
// export, DumpStats tables, bench JSON writers) must go through this so a
// new class shows up everywhere at once.
constexpr const char* IoClassName(IoClass cls) {
  switch (cls) {
    case IoClass::kDemandRead: return "demand_read";
    case IoClass::kPrefetch: return "prefetch";
    case IoClass::kWriteback: return "writeback";
    case IoClass::kEviction: return "eviction";
    case IoClass::kRepair: return "repair";
    case IoClass::kHedge: return "hedge";
    case IoClass::kMigration: return "migration";
  }
  return "unknown";
}

// The two classes that make up the demand-fetch critical path: a demand
// read stalls a process now; a prefetch is the read the next fault hopes to
// find complete. Everything else (writeback/eviction/repair/hedge) is
// background bandwidth whose latency no process observes directly - a
// hedge is deliberately background so racing a suspect replica can never
// displace first-issue demand reads on the links (the mitigation must not
// become its own storm).
constexpr bool IsDataClass(IoClass cls) {
  return cls == IoClass::kDemandRead || cls == IoClass::kPrefetch;
}

// One page op. `slot` addresses the page in the backing store; the rest is
// metadata the lower layers use for scheduling and accounting. `host` is
// stamped by the host's RdmaNic when the op enters a shared fabric (layers
// above the NIC do not know their uplink id).
struct IoRequest {
  SwapSlot slot = kInvalidSlot;
  Pid tenant = 0;                        // issuing process (0 = kernel work)
  uint32_t host = 0;                     // fabric uplink id (NIC-stamped)
  IoClass cls = IoClass::kDemandRead;
  uint32_t bytes = kPageSize;            // payload size (headers are the
                                         // transport's business)
  SimTimeNs enqueue_ts = 0;              // when the op entered the I/O path
};

// Batch-entry constructors for the common classes. Readability helpers
// only: every field stays assignable for callers with unusual needs.
constexpr IoRequest DemandRead(SwapSlot slot, Pid tenant = 0,
                               SimTimeNs enqueue_ts = 0) {
  return IoRequest{slot, tenant, 0, IoClass::kDemandRead, kPageSize,
                   enqueue_ts};
}

constexpr IoRequest PrefetchRead(SwapSlot slot, Pid tenant = 0,
                                 SimTimeNs enqueue_ts = 0) {
  return IoRequest{slot, tenant, 0, IoClass::kPrefetch, kPageSize,
                   enqueue_ts};
}

constexpr IoRequest WritebackOp(SwapSlot slot, Pid tenant = 0,
                                SimTimeNs enqueue_ts = 0) {
  return IoRequest{slot, tenant, 0, IoClass::kWriteback, kPageSize,
                   enqueue_ts};
}

constexpr IoRequest EvictionWrite(SwapSlot slot, Pid tenant = 0,
                                  SimTimeNs enqueue_ts = 0) {
  return IoRequest{slot, tenant, 0, IoClass::kEviction, kPageSize,
                   enqueue_ts};
}

constexpr IoRequest RepairCopy(SwapSlot slot, SimTimeNs enqueue_ts = 0) {
  return IoRequest{slot, 0, 0, IoClass::kRepair, kPageSize, enqueue_ts};
}

constexpr IoRequest MigrationCopy(SwapSlot slot, SimTimeNs enqueue_ts = 0) {
  return IoRequest{slot, 0, 0, IoClass::kMigration, kPageSize, enqueue_ts};
}

}  // namespace leap

#endif  // LEAP_SRC_SIM_IO_REQUEST_H_
