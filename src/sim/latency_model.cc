#include "src/sim/latency_model.h"

#include <algorithm>
#include <cmath>

namespace leap {

LatencyModel LatencyModel::Constant(SimTimeNs value) {
  return LatencyModel(Kind::kConstant, static_cast<double>(value), 0.0, value);
}

LatencyModel LatencyModel::Uniform(SimTimeNs lo, SimTimeNs hi) {
  return LatencyModel(Kind::kUniform, static_cast<double>(lo),
                      static_cast<double>(hi), lo);
}

LatencyModel LatencyModel::Normal(SimTimeNs mean, SimTimeNs stddev,
                                  SimTimeNs min) {
  return LatencyModel(Kind::kNormal, static_cast<double>(mean),
                      static_cast<double>(stddev), min);
}

LatencyModel LatencyModel::LogNormal(SimTimeNs median, double sigma,
                                     SimTimeNs min) {
  return LatencyModel(Kind::kLogNormal, std::log(static_cast<double>(median)),
                      sigma, min);
}

SimTimeNs LatencyModel::Sample(Rng& rng) const {
  double v = 0.0;
  switch (kind_) {
    case Kind::kConstant:
      v = a_;
      break;
    case Kind::kUniform:
      v = a_ + rng.NextDouble() * (b_ - a_);
      break;
    case Kind::kNormal:
      v = a_ + rng.NextGaussian() * b_;
      break;
    case Kind::kLogNormal:
      v = std::exp(a_ + rng.NextGaussian() * b_);
      break;
  }
  const double floored = std::max(v, static_cast<double>(min_));
  return static_cast<SimTimeNs>(std::llround(floored));
}

double LatencyModel::MeanNs() const {
  switch (kind_) {
    case Kind::kConstant:
      return a_;
    case Kind::kUniform:
      return (a_ + b_) / 2.0;
    case Kind::kNormal:
      // Truncation shifts the mean slightly; ignore for reporting purposes.
      return a_;
    case Kind::kLogNormal:
      return std::exp(a_ + b_ * b_ / 2.0);
  }
  return 0.0;
}

}  // namespace leap
