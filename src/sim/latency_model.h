// Parametric latency distributions for data-path stages and devices.
//
// The paper's section 2.2 observation that "significant variations in the
// preparation and batching stages ... cause the average to stray far from
// the median" is modeled with log-normal stages; devices use truncated
// normals around their published averages.
#ifndef LEAP_SRC_SIM_LATENCY_MODEL_H_
#define LEAP_SRC_SIM_LATENCY_MODEL_H_

#include "src/sim/rng.h"
#include "src/sim/types.h"

namespace leap {

class LatencyModel {
 public:
  LatencyModel() : LatencyModel(Constant(0)) {}

  static LatencyModel Constant(SimTimeNs value);
  static LatencyModel Uniform(SimTimeNs lo, SimTimeNs hi);
  // Normal truncated below at `min`.
  static LatencyModel Normal(SimTimeNs mean, SimTimeNs stddev, SimTimeNs min);
  // Log-normal specified by its median and the sigma of the underlying
  // normal; heavier sigma -> heavier tail (mean pulled above median).
  static LatencyModel LogNormal(SimTimeNs median, double sigma, SimTimeNs min);

  SimTimeNs Sample(Rng& rng) const;

  // Analytic expectation of the distribution (used by tests and to report
  // calibration targets).
  double MeanNs() const;

 private:
  enum class Kind { kConstant, kUniform, kNormal, kLogNormal };

  LatencyModel(Kind kind, double a, double b, SimTimeNs min)
      : kind_(kind), a_(a), b_(b), min_(min) {}

  Kind kind_;
  double a_;       // constant value / lo / mean / log-median
  double b_;       // unused / hi / stddev / sigma
  SimTimeNs min_;  // truncation floor
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_LATENCY_MODEL_H_
