// Synchronization primitives for the sharded parallel simulation engine.
//
// The sharded engine (src/runtime/sharded_cluster.h) partitions a cluster
// into shards, each driven by its own worker thread over its own
// EventQueue. Shards advance in lockstep time windows and exchange
// cross-shard page ops through the two primitives here:
//
//  - SpscMailbox: a fixed-capacity single-producer/single-consumer ring of
//    POD CrossShardOp records, one per (sender shard, receiver shard)
//    pair. The sender pushes wait-free during its window; the ring is
//    drained only inside the window barrier's completion step, where every
//    worker is quiesced, so a push and a drain never race on the same
//    window's entries (the atomics make the hand-off well-defined for
//    TSan and for any future opportunistic drain). A full ring spills to a
//    sender-side overflow vector that the same completion step flushes -
//    overflow changes delivery latency never, and ordering never, because
//    receivers apply ops sorted by (effect_ts, sender, seq).
//
//  - WindowBarrier: a classic generation-counted barrier whose last
//    arriver runs a completion hook before releasing the others. The
//    completion step is the engine's only serial section: it drains
//    mailboxes, decides the next window (advance, jump over idle time, or
//    stop), and snapshots barrier-synchronized stats.
//
// Determinism contract: everything observable is a pure function of the
// op sequence. Whether a racing push lands before or after a particular
// drain can vary run to run, but an op's *application window* cannot: its
// effect_ts is clamped to at least the end of the window it was sent in,
// receivers only apply ops whose effect_ts falls inside the window being
// opened, and the barrier guarantees every op is visible by then.
#ifndef LEAP_SRC_SIM_SHARD_SYNC_H_
#define LEAP_SRC_SIM_SHARD_SYNC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "src/sim/types.h"

namespace leap {

// One cross-shard page op. POD by design: mailboxes move these between
// threads, so no pointers into sender-owned state are allowed.
struct CrossShardOp {
  enum class Kind : uint8_t {
    kMirrorWrite,  // async cross-domain page replica (DR traffic)
  };

  SimTimeNs effect_ts = 0;  // when the op lands at the target shard
  uint64_t seq = 0;         // per-sender sequence (total order tiebreak)
  uint64_t page_key = 0;    // target node's tag-store key
  uint64_t tag = 0;         // content tag to store
  SwapSlot slot = kInvalidSlot;
  uint32_t node = 0;      // global target node id (homed at receiver)
  uint32_t host = 0;      // global sending host id
  uint32_t sender = 0;    // sending shard id (sort key component)
  Pid tenant = 0;
  uint32_t bytes = static_cast<uint32_t>(kPageSize);
  Kind kind = Kind::kMirrorWrite;
};

// Application order at the receiver: ops land in simulated-time order,
// with (sender shard, per-sender seq) breaking ties so equal-time ops from
// different senders apply in a run-independent order.
inline bool CrossShardOpBefore(const CrossShardOp& a, const CrossShardOp& b) {
  if (a.effect_ts != b.effect_ts) {
    return a.effect_ts < b.effect_ts;
  }
  if (a.sender != b.sender) {
    return a.sender < b.sender;
  }
  return a.seq < b.seq;
}

class SpscMailbox {
 public:
  explicit SpscMailbox(size_t capacity_pow2 = 4096)
      : buffer_(RoundUpPow2(capacity_pow2)), mask_(buffer_.size() - 1) {}

  // Producer side (sender shard's worker thread). Never blocks: a full
  // ring spills into the overflow vector, and once anything has spilled,
  // later pushes spill too so per-sender FIFO order is preserved.
  void Push(const CrossShardOp& op) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (!overflow_.empty() || tail - head >= buffer_.size()) {
      overflow_.push_back(op);
      ++overflowed_;
      return;
    }
    buffer_[tail & mask_] = op;
    tail_.store(tail + 1, std::memory_order_release);
  }

  // Consumer side. Only called from the window barrier's completion step
  // (all workers quiesced). Appends every queued op - ring first, then the
  // sender's overflow spill - to `out` and empties both.
  void DrainTo(std::vector<CrossShardOp>& out) {
    const size_t tail = tail_.load(std::memory_order_acquire);
    size_t head = head_.load(std::memory_order_relaxed);
    while (head != tail) {
      out.push_back(buffer_[head & mask_]);
      ++head;
    }
    head_.store(head, std::memory_order_release);
    if (!overflow_.empty()) {
      out.insert(out.end(), overflow_.begin(), overflow_.end());
      overflow_.clear();
    }
  }

  bool Empty() const {
    return overflow_.empty() &&
           head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
  }

  // Total ops that missed the ring and took the overflow spill (capacity
  // pressure telemetry; delivery is unaffected).
  uint64_t overflowed() const { return overflowed_; }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  std::vector<CrossShardOp> buffer_;
  size_t mask_;
  std::atomic<size_t> head_{0};
  std::atomic<size_t> tail_{0};
  // Sender-owned spill; drained under the barrier like the ring.
  std::vector<CrossShardOp> overflow_;
  uint64_t overflowed_ = 0;
};

// Generation-counted barrier with a completion hook run by the last
// arriver while every other worker is parked. The hook is the sharded
// engine's serial section; keep it cheap.
class WindowBarrier {
 public:
  WindowBarrier(size_t parties, std::function<void()> on_complete)
      : parties_(parties), on_complete_(std::move(on_complete)) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t my_generation = generation_;
    if (++arrived_ == parties_) {
      if (on_complete_) {
        on_complete_();
      }
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != my_generation; });
  }

 private:
  const size_t parties_;
  std::function<void()> on_complete_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_SHARD_SYNC_H_
