#include "src/sim/zipf.h"

#include <algorithm>
#include <cmath>

namespace leap {

double ZipfSampler::Zeta(uint64_t n, double theta) {
  // Exact up to a cutoff, then the Euler-Maclaurin integral approximation;
  // keeps construction O(1)-ish even for page-count-sized n.
  constexpr uint64_t kExactTerms = 10'000;
  double sum = 0.0;
  const uint64_t exact = std::min(n, kExactTerms);
  for (uint64_t i = 1; i <= exact; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    const double a = static_cast<double>(exact);
    const double b = static_cast<double>(n);
    if (theta == 1.0) {
      sum += std::log(b / a);
    } else {
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) /
             (1.0 - theta);
    }
  }
  return sum;
}

ZipfSampler::ZipfSampler(uint64_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (theta_ == 0.0) {
    return rng.NextU64(n_);
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double frac =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  const uint64_t rank = static_cast<uint64_t>(frac);
  return std::min(rank, n_ - 1);
}

}  // namespace leap
