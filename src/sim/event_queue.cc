#include "src/sim/event_queue.h"

#include <utility>

namespace leap {

void EventQueue::ScheduleAt(SimTimeNs when, Callback cb) {
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

size_t EventQueue::RunUntil(SimTimeNs until) {
  size_t ran = 0;
  while (!heap_.empty() && heap_.top().when <= until) {
    // Copy out before pop: the callback may schedule further events.
    Event ev = heap_.top();
    heap_.pop();
    ev.cb(ev.when);
    ++ran;
  }
  return ran;
}

SimTimeNs EventQueue::NextEventTime() const {
  return heap_.empty() ? kNoEvent : heap_.top().when;
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  next_seq_ = 0;
}

}  // namespace leap
