#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace leap {

uint32_t EventQueue::AcquireNode(Callback cb) {
  if (free_nodes_.empty()) {
    const uint32_t node = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(std::move(cb));
    return node;
  }
  const uint32_t node = free_nodes_.back();
  free_nodes_.pop_back();
  nodes_[node] = std::move(cb);
  return node;
}

void EventQueue::ReleaseNode(uint32_t node) { free_nodes_.push_back(node); }

void EventQueue::SiftUp(size_t i) {
  while (i != 0) {
    const size_t parent = (i - 1) / 4;
    if (!Earlier(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    const size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, n);
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Earlier(heap_[best], heap_[i])) {
      break;
    }
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventQueue::PopTop() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

void EventQueue::ScheduleAt(SimTimeNs when, Callback cb) {
  const uint32_t node = AcquireNode(std::move(cb));
  heap_.push_back(HeapEntry{when, next_seq_++, node});
  SiftUp(heap_.size() - 1);
}

size_t EventQueue::RunUntil(SimTimeNs until) {
  size_t ran = 0;
  while (!heap_.empty() && heap_[0].when <= until) {
    const HeapEntry top = heap_[0];
    PopTop();
    // Move the callable out and recycle its node before invoking: the
    // callback may schedule further events (and reuse this very node).
    Callback cb = std::move(nodes_[top.node]);
    ReleaseNode(top.node);
    cb(top.when);
    ++ran;
  }
  return ran;
}

SimTimeNs EventQueue::NextEventTime() const {
  return heap_.empty() ? kNoEvent : heap_[0].when;
}

void EventQueue::Clear() {
  for (const HeapEntry& entry : heap_) {
    nodes_[entry.node] = Callback();  // destroy the callable, keep the slot
    ReleaseNode(entry.node);
  }
  heap_.clear();
  next_seq_ = 0;
}

}  // namespace leap
