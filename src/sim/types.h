// Fundamental scalar types shared by every simulator module.
#ifndef LEAP_SRC_SIM_TYPES_H_
#define LEAP_SRC_SIM_TYPES_H_

#include <cstddef>
#include <cstdint>

#include "src/container/inline_vec.h"

namespace leap {

// Simulated time, in nanoseconds since simulation start.
using SimTimeNs = uint64_t;

constexpr SimTimeNs kNsPerUs = 1'000;
constexpr SimTimeNs kNsPerMs = 1'000'000;
constexpr SimTimeNs kNsPerSec = 1'000'000'000;

constexpr double ToUs(SimTimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double ToMs(SimTimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double ToSec(SimTimeNs t) { return static_cast<double>(t) / kNsPerSec; }

// Page geometry. Everything in the data path moves 4 KB pages, like the
// paper's kernel integration.
constexpr size_t kPageSize = 4096;
constexpr size_t kPageShift = 12;

// Virtual page number within a process address space.
using Vpn = uint64_t;
// Physical frame number in the (simulated) local DRAM.
using Pfn = uint32_t;
// Page-granularity offset into a backing store (swap device / remote slab /
// remote file). Mirrors a Linux swap slot.
using SwapSlot = uint64_t;
// Process identifier.
using Pid = uint32_t;

constexpr Pfn kInvalidPfn = static_cast<Pfn>(-1);
constexpr SwapSlot kInvalidSlot = static_cast<SwapSlot>(-1);

// Signed page-address delta between two consecutive remote page accesses.
// This is the unit stored in Leap's AccessHistory (paper section 4.1).
using PageDelta = int64_t;

inline size_t PagesForBytes(size_t bytes) {
  return (bytes + kPageSize - 1) / kPageSize;
}

// Hard cap on prefetch candidates generated for a single fault, across all
// prefetchers. Window/degree knobs are clamped to this at construction, so
// per-fault candidate lists fit in fixed scratch storage and a prefetch
// decision never allocates. The paper's PWsize_max is 8; the largest value
// any bench sweeps is 32.
inline constexpr size_t kMaxPrefetchCandidates = 64;

// One fault's prefetch candidate list (demand page excluded): fixed-
// capacity, stack-allocated, cheap to return by value.
using CandidateVec = InlineVec<SwapSlot, kMaxPrefetchCandidates>;

// Congestion snapshot produced by the transport layer (HostAgent/Fabric)
// and consumed by prefetch policies and the budget governor. Lives here so
// src/rdma does not depend on src/prefetch. All fields are cheap copies
// of continuously-maintained state - a snapshot costs a few loads.
struct CongestionSignals {
  // EWMA of fabric queue delay (wait for a link serialization slot plus
  // incast congestion stall) per page op, in ns, across ALL traffic
  // classes. 0 when not fabric-bound. Kept for policies that want the
  // aggregate view; congestion *control* should key on the per-class
  // signals below so repair/writeback noise cannot masquerade as
  // data-path congestion.
  double queue_delay_ewma_ns = 0.0;
  // Per-class EWMAs of the same quantity for the two classes on the
  // demand-fetch critical path (IoClass::kDemandRead / kPrefetch). The
  // budget governor keys on these.
  double demand_queue_delay_ewma_ns = 0.0;
  double prefetch_queue_delay_ewma_ns = 0.0;
  // Cumulative remote_capacity_exhausted events seen by this host's agent.
  // Monotone; consumers diff consecutive snapshots for "recent ticks".
  uint64_t capacity_exhausted_total = 0;

  // The data-path congestion signal: the worse of the demand and prefetch
  // queue-delay EWMAs. Background classes (writeback/eviction/repair) are
  // deliberately excluded.
  double DataQueueDelayNs() const {
    return demand_queue_delay_ewma_ns > prefetch_queue_delay_ewma_ns
               ? demand_queue_delay_ewma_ns
               : prefetch_queue_delay_ewma_ns;
  }
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_TYPES_H_
