// Zipf-distributed integer sampler over [0, n) with exponent `theta`.
//
// Used by the Memcached- and VoltDB-like workload generators: production
// key-value traffic (Facebook ETC) is heavily skewed, which at page
// granularity yields the "mostly random" fault pattern the paper reports.
#ifndef LEAP_SRC_SIM_ZIPF_H_
#define LEAP_SRC_SIM_ZIPF_H_

#include <cstdint>

#include "src/sim/rng.h"

namespace leap {

class ZipfSampler {
 public:
  // theta in (0, 1) skews mildly; theta > 1 skews heavily. theta == 0 is
  // uniform. Uses the Gray/Jim Gray et al. transform (constant time per
  // sample after O(1) setup), the standard approach in YCSB.
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_ZIPF_H_
