// Minimal discrete-event scheduler.
//
// Components schedule callbacks at absolute simulated times; the machine
// drains events due before each page access so background activity (kswapd
// scans, I/O completions) interleaves deterministically with foreground
// faults.
#ifndef LEAP_SRC_SIM_EVENT_QUEUE_H_
#define LEAP_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/types.h"

namespace leap {

class EventQueue {
 public:
  using Callback = std::function<void(SimTimeNs now)>;

  // Schedules `cb` to run at absolute time `when`. Events at equal times run
  // in scheduling order (FIFO).
  void ScheduleAt(SimTimeNs when, Callback cb);

  // Runs every event with time <= `until`. Returns the number of events run.
  size_t RunUntil(SimTimeNs until);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; kNoEvent if none.
  static constexpr SimTimeNs kNoEvent = static_cast<SimTimeNs>(-1);
  SimTimeNs NextEventTime() const;

  void Clear();

 private:
  struct Event {
    SimTimeNs when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_EVENT_QUEUE_H_
