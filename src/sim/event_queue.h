// Minimal discrete-event scheduler.
//
// Components schedule callbacks at absolute simulated times; the machine
// drains events due before each page access so background activity (kswapd
// scans, I/O completions) interleaves deterministically with foreground
// faults.
//
// Built for a hot steady state: the heap is a flat 4-ary array of POD
// entries (shallower than a binary heap, and each level shares a cache
// line), callbacks live in small-buffer storage inside pooled nodes (no
// std::function, no per-event heap allocation), and popped nodes are
// recycled through a free list. After warm-up, scheduling and running
// events never touches the allocator.
#ifndef LEAP_SRC_SIM_EVENT_QUEUE_H_
#define LEAP_SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/types.h"

namespace leap {

class EventQueue {
 public:
  // Inline storage for a scheduled callable. Large enough for a lambda
  // with several captured pointers or a std::function, small enough that
  // the node pool stays compact.
  static constexpr size_t kCallbackCapacity = 48;

  // Move-only callable wrapper with inline (small-buffer) storage. A
  // callable larger than kCallbackCapacity is rejected at compile time -
  // capture less, or capture a pointer to long-lived state.
  class Callback {
   public:
    Callback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback>>>
    Callback(F&& f) {  // NOLINT(google-explicit-constructor)
      using Fn = std::decay_t<F>;
      static_assert(sizeof(Fn) <= kCallbackCapacity,
                    "callback too large for EventQueue inline storage");
      static_assert(alignof(Fn) <= alignof(std::max_align_t));
      new (storage_) Fn(std::forward<F>(f));
      invoke_ = [](void* s, SimTimeNs now) { (*static_cast<Fn*>(s))(now); };
      relocate_ = [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        new (dst) Fn(std::move(*from));
        from->~Fn();
      };
      destroy_ = [](void* s) { static_cast<Fn*>(s)->~Fn(); };
    }

    Callback(Callback&& other) noexcept { MoveFrom(other); }
    Callback& operator=(Callback&& other) noexcept {
      if (this != &other) {
        Destroy();
        MoveFrom(other);
      }
      return *this;
    }
    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;
    ~Callback() { Destroy(); }

    void operator()(SimTimeNs now) { invoke_(storage_, now); }
    explicit operator bool() const { return invoke_ != nullptr; }

   private:
    void MoveFrom(Callback& other) noexcept {
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      if (invoke_ != nullptr) {
        relocate_(storage_, other.storage_);
      }
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
    void Destroy() noexcept {
      if (destroy_ != nullptr) {
        destroy_(storage_);
        invoke_ = nullptr;
        relocate_ = nullptr;
        destroy_ = nullptr;
      }
    }

    alignas(std::max_align_t) unsigned char storage_[kCallbackCapacity];
    void (*invoke_)(void*, SimTimeNs) = nullptr;
    void (*relocate_)(void*, void*) = nullptr;
    void (*destroy_)(void*) = nullptr;
  };

  // Schedules `cb` to run at absolute time `when`. Events at equal times run
  // in scheduling order (FIFO).
  void ScheduleAt(SimTimeNs when, Callback cb);

  // Runs every event with time <= `until`. Returns the number of events run.
  size_t RunUntil(SimTimeNs until);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  // Time of the earliest pending event; kNoEvent if none.
  static constexpr SimTimeNs kNoEvent = static_cast<SimTimeNs>(-1);
  SimTimeNs NextEventTime() const;

  // Drops all pending events; their nodes return to the free pool.
  void Clear();

  // Pool introspection (for tests): total nodes ever allocated, and how
  // many of them are currently free for reuse.
  size_t pool_capacity() const { return nodes_.size(); }
  size_t free_pool_size() const { return free_nodes_.size(); }

 private:
  // POD heap entry; the callable lives in the pooled node it points at.
  struct HeapEntry {
    SimTimeNs when;
    uint64_t seq;
    uint32_t node;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  uint32_t AcquireNode(Callback cb);
  void ReleaseNode(uint32_t node);
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopTop();

  std::vector<HeapEntry> heap_;  // flat 4-ary min-heap on (when, seq)
  std::vector<Callback> nodes_;
  std::vector<uint32_t> free_nodes_;
  uint64_t next_seq_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_EVENT_QUEUE_H_
