// Deterministic pseudo-random number generation for reproducible simulation.
//
// xoshiro256** seeded via SplitMix64. Every simulation component takes an
// explicit Rng so whole experiments replay bit-identically from one seed.
#ifndef LEAP_SRC_SIM_RNG_H_
#define LEAP_SRC_SIM_RNG_H_

#include <cstdint>

namespace leap {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextU64(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Standard normal via Box-Muller (cached second variate).
  double NextGaussian();

  // Derive an independent child stream (for per-component determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_RNG_H_
