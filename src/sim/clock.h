// Virtual nanosecond clock driving the discrete-event simulation.
#ifndef LEAP_SRC_SIM_CLOCK_H_
#define LEAP_SRC_SIM_CLOCK_H_

#include "src/sim/types.h"

namespace leap {

class Clock {
 public:
  SimTimeNs Now() const { return now_; }

  void Advance(SimTimeNs delta) { now_ += delta; }

  // Move forward to `t`; moving backwards is a programming error and is
  // ignored so replays stay monotonic.
  void AdvanceTo(SimTimeNs t) {
    if (t > now_) {
      now_ = t;
    }
  }

  void Reset() { now_ = 0; }

 private:
  SimTimeNs now_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_SIM_CLOCK_H_
