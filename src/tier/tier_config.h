// Configuration for the tiered far-memory hierarchy (src/tier/README.md).
//
// The hierarchy below local DRAM is an ordered set of tiers: a CXL-like
// direct-attached tier (fast, capacity-bounded), the fabric remote pool,
// and local SSD. `TierConfig::enabled=false` (the default) means OFF in
// the null-pointer-gating sense every optional subsystem here follows: no
// TieredStore or TierMigrator is constructed, no RNG is drawn, and runs
// are bit-identical to a build without src/tier/.
#ifndef LEAP_SRC_TIER_TIER_CONFIG_H_
#define LEAP_SRC_TIER_TIER_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/sim/types.h"

namespace leap {

// Tier indices below DRAM, fastest first. These index the TieredStore's
// residency/LRU arrays and the per-tier occupancy vectors in ClusterStats
// and StatsSample.
inline constexpr size_t kTierCxl = 0;     // direct-attached memory-mode CXL
inline constexpr size_t kTierRemote = 1;  // fabric remote (donor pool)
inline constexpr size_t kTierSsd = 2;     // local flash, the cold floor
inline constexpr size_t kTierCount = 3;

constexpr const char* TierName(size_t tier) {
  switch (tier) {
    case kTierCxl: return "cxl";
    case kTierRemote: return "remote";
    case kTierSsd: return "ssd";
  }
  return "unknown";
}

// CXL-like tier device model: load/store-class latency an order of
// magnitude under the fabric (hundreds of ns vs ~5 us remote), modeled as
// a channeled device like the SSD so back-to-back migrations queue.
struct CxlStoreConfig {
  SimTimeNs read_mean_ns = 600;
  SimTimeNs read_stddev_ns = 120;
  SimTimeNs read_min_ns = 350;
  SimTimeNs write_mean_ns = 750;
  SimTimeNs write_stddev_ns = 150;
  SimTimeNs write_min_ns = 450;
  size_t channels = 8;
};

struct TierConfig {
  // Master switch. False = no tier state exists anywhere (see header).
  bool enabled = false;

  // Capacity of the CXL tier in 4KB pages. New swap-outs fill this tier
  // first; when full they spill to the fabric remote tier (counted as
  // tier_spills).
  size_t cxl_capacity_pages = 8 * 1024;
  CxlStoreConfig cxl;

  // --- background migrator (kswapd-style tick on the shared queue) ------
  bool migrator_enabled = true;
  SimTimeNs migrate_period_ns = 1 * kNsPerMs;
  // Max pages considered for promotion and for demotion per tick.
  size_t migrate_batch = 64;
  // A lower-tier page is promotion-worthy once its LruList access count
  // reaches this (counts start at 1 on first touch and halve on decay), and
  // a fast-tier page below it is fair game for demotion. 3 means "touched
  // at least twice since arriving on the tier" - one re-reference is not
  // yet a trend.
  uint32_t promote_threshold = 3;
  // Access counts halve every this many ticks (0 = never decay).
  uint32_t decay_every_ticks = 8;
  // Demotion hysteresis on the CXL tier: start demoting above high, stop
  // below low; promotion also stops at high so the two never thrash.
  double demote_high_watermark = 0.98;
  double demote_low_watermark = 0.92;
  // Cold-floor demotion: up to this many fully-decayed (count==0) remote
  // pages per tick sink to the SSD tier. 0 disables (default), keeping
  // the remote tier the cold floor.
  size_t remote_cold_demote_batch = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_TIER_TIER_CONFIG_H_
