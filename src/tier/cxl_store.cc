#include "src/tier/cxl_store.h"

#include <algorithm>

namespace leap {

CxlStore::CxlStore(const CxlStoreConfig& config)
    : config_(config),
      read_(LatencyModel::Normal(config.read_mean_ns, config.read_stddev_ns,
                                 config.read_min_ns)),
      write_(LatencyModel::Normal(config.write_mean_ns, config.write_stddev_ns,
                                  config.write_min_ns)),
      busy_until_(std::max<size_t>(1, config.channels), 0) {}

void CxlStore::ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                         Rng& rng, std::span<SimTimeNs> ready_at) {
  for (size_t i = 0; i < reqs.size(); ++i) {
    auto& busy = busy_until_[ChannelFor(reqs[i].slot)];
    const SimTimeNs start = std::max(now, busy);
    const SimTimeNs done = start + read_.Sample(rng);
    busy = done;
    ready_at[i] = done;
  }
}

SimTimeNs CxlStore::WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) {
  auto& busy = busy_until_[ChannelFor(req.slot)];
  const SimTimeNs start = std::max(now, busy);
  const SimTimeNs done = start + write_.Sample(rng);
  busy = done;
  return done;
}

}  // namespace leap
