#include "src/tier/tier_migrator.h"

#include <vector>

namespace leap {
namespace {

struct Move {
  SwapSlot slot;
  size_t from;
  size_t to;
};

}  // namespace

TierMigrator::TierMigrator(const TierConfig& config, EventQueue* events,
                           TieredStore* store, uint64_t seed)
    : config_(config), events_(events), store_(store), rng_(seed) {}

void TierMigrator::Start(SimTimeNs at) {
  events_->ScheduleAt(at, [this](SimTimeNs when) { Tick(when); });
}

void TierMigrator::Tick(SimTimeNs now) {
  ++ticks_;
  if (config_.decay_every_ticks != 0 &&
      ticks_ % config_.decay_every_ticks == 0) {
    store_->DecayCounts();
  }

  const size_t cap = store_->FastCapacityPages();
  const auto high =
      static_cast<size_t>(config_.demote_high_watermark *
                          static_cast<double>(cap));
  const auto low = static_cast<size_t>(config_.demote_low_watermark *
                                       static_cast<double>(cap));

  // Planning phase: decide every move against a simulated occupancy
  // (`planned_cxl`), execute nothing yet. The copies are staggered across
  // the tick period below, so the plan must not depend on its own
  // side effects being visible in the store.
  std::vector<Move> moves;
  size_t planned_cxl = store_->TierPages(kTierCxl);

  // Demotion candidates: the fast tier's recency tail, but only pages
  // whose heat sits below the promotion bar. A page as hot as the pages
  // we would promote is never a victim - demoting it just to re-promote
  // it is the ping-pong this loop exists to avoid.
  std::vector<SwapSlot> victims;
  for (const SwapSlot slot :
       store_->ColdestOf(kTierCxl, config_.migrate_batch)) {
    if (store_->AccessCount(kTierCxl, slot) < config_.promote_threshold) {
      victims.push_back(slot);
    }
  }
  size_t next_victim = 0;

  // Watermark demote: first-touch placement fills the fast tier to 100%;
  // drain the overshoot down to the low watermark so promotions have
  // standing room (demote before promote, so this tick's promotions land
  // instead of bouncing off a full tier).
  if (planned_cxl > high) {
    while (planned_cxl > low && next_victim < victims.size()) {
      moves.push_back({victims[next_victim++], kTierCxl, kTierRemote});
      --planned_cxl;
    }
  }

  // Promote by exchange: each remote page past the heat bar either takes
  // free fast-tier room or displaces one provably-cold victim; when the
  // cold candidates run out the tier is full of hot pages and migration
  // stops - churn is bounded by the supply of genuinely cold pages, not
  // by the batch size. The scan walks the remote tier's recency end; LRU
  // order is not heat order, so a cool recently-touched page is skipped,
  // not a scan stop.
  for (const SwapSlot slot :
       store_->HottestOf(kTierRemote, config_.migrate_batch)) {
    if (store_->AccessCount(kTierRemote, slot) < config_.promote_threshold) {
      continue;
    }
    if (planned_cxl >= high) {
      if (next_victim >= victims.size()) {
        break;
      }
      moves.push_back({victims[next_victim++], kTierCxl, kTierRemote});
      --planned_cxl;
    }
    moves.push_back({slot, kTierRemote, kTierCxl});
    ++planned_cxl;
  }

  // Cold floor: pages whose heat fully decayed on remote sink to flash.
  if (config_.remote_cold_demote_batch > 0) {
    for (const SwapSlot slot :
         store_->ColdestOf(kTierRemote, config_.remote_cold_demote_batch)) {
      if (store_->AccessCount(kTierRemote, slot) != 0) {
        continue;
      }
      moves.push_back({slot, kTierRemote, kTierSsd});
    }
  }

  // Execution phase: trickle the copies across the period instead of
  // bursting them at tick time. A burst would slam the per-link pacing
  // horizon hundreds of microseconds forward in one event, and every
  // later background op (evictions included - which reclaim, and so
  // demand faults, wait on) would queue behind a mostly-idle wire.
  // Staggered an even fraction of the period apart, the cap's horizon
  // never accumulates and migration occupies only its real wire share.
  // Order is preserved, so a demotion always frees its room before the
  // promotion planned against it; MigrateSlot re-validates residency and
  // capacity at fire time in case the foreground moved underneath us.
  if (!moves.empty()) {
    const SimTimeNs spacing = std::max<SimTimeNs>(
        config_.migrate_period_ns / static_cast<SimTimeNs>(moves.size() + 1),
        1);
    for (size_t i = 0; i < moves.size(); ++i) {
      const Move m = moves[i];
      events_->ScheduleAt(
          now + static_cast<SimTimeNs>(i + 1) * spacing,
          [this, m](SimTimeNs when) {
            store_->MigrateSlot(m.slot, m.from, m.to, when, rng_);
          });
    }
  }

  events_->ScheduleAt(now + config_.migrate_period_ns,
                      [this](SimTimeNs when) { Tick(when); });
}

}  // namespace leap
