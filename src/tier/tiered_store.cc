#include "src/tier/tiered_store.h"

namespace leap {

TieredStore::TieredStore(const TierConfig& config, BackingStore* remote,
                         BackingStore* ssd)
    : config_(config),
      cxl_(config.cxl),
      remote_(remote),
      ssd_(ssd),
      tiers_{&cxl_, remote, ssd} {}

size_t TieredStore::TierOf(SwapSlot slot) const {
  const uint8_t* tier = residency_.Find(slot);
  return tier == nullptr ? kTierCount : *tier;
}

size_t TieredStore::PlaceNewSlot(SwapSlot slot) {
  size_t dest = kTierCxl;
  if (lru_[kTierCxl].size() >= config_.cxl_capacity_pages) {
    dest = kTierRemote;
    if (counters_ != nullptr) {
      counters_->Add(counter::kTierSpills);
    }
  }
  auto [tier, inserted] = residency_.Emplace(slot);
  *tier = static_cast<uint8_t>(dest);
  (void)inserted;
  return dest;
}

void TieredStore::ReadPages(std::span<const IoRequest> reqs, SimTimeNs now,
                            Rng& rng, std::span<SimTimeNs> ready_at) {
  // Per-request dispatch: each sub-store's batch path is a per-request
  // loop, so splitting a mixed-tier batch preserves each device's queueing
  // behavior while letting every page read from its own tier.
  for (size_t i = 0; i < reqs.size(); ++i) {
    const IoRequest& req = reqs[i];
    size_t tier = TierOf(req.slot);
    if (tier == kTierCount) {
      // A read for a slot never written through this store (defensive:
      // swap-outs precede swap-ins on every path here). Adopt it on the
      // remote tier, where an untracked slot would have lived.
      tier = kTierRemote;
      auto [entry, inserted] = residency_.Emplace(req.slot);
      *entry = static_cast<uint8_t>(tier);
      (void)inserted;
    }
    tiers_[tier]->ReadPages(std::span<const IoRequest>(&req, 1), now, rng,
                            std::span<SimTimeNs>(&ready_at[i], 1));
    lru_[tier].Touch(req.slot);
    if (counters_ != nullptr && req.cls == IoClass::kDemandRead) {
      counters_->Add(tier == kTierCxl ? counter::kTierFastHits
                                      : counter::kTierSlowHits);
    }
  }
}

SimTimeNs TieredStore::WritePage(const IoRequest& req, SimTimeNs now,
                                 Rng& rng) {
  size_t tier = TierOf(req.slot);
  if (tier == kTierCount) {
    tier = PlaceNewSlot(req.slot);
  }
  // Known slots rewrite in place: the page's current tier holds the only
  // authoritative copy, so read-your-writes needs no cross-tier fence.
  lru_[tier].Touch(req.slot);
  return tiers_[tier]->WritePage(req, now, rng);
}

void TieredStore::DecayCounts() {
  for (auto& lru : lru_) {
    lru.DecayCounts();
  }
}

bool TieredStore::MigrateSlot(SwapSlot slot, size_t from, size_t to,
                              SimTimeNs now, Rng& rng) {
  uint8_t* tier = residency_.Find(slot);
  if (tier == nullptr || *tier != from || from == to) {
    return false;
  }
  if (to == kTierCxl && lru_[kTierCxl].size() >= config_.cxl_capacity_pages) {
    return false;
  }
  // One read off the source tier, one write onto the destination, both
  // tagged kMigration: the copy occupies real device/fabric time, and the
  // remote legs are paced by the per-link migration bandwidth cap.
  const IoRequest copy = MigrationCopy(slot, now);
  SimTimeNs read_done = now;
  tiers_[from]->ReadPages(std::span<const IoRequest>(&copy, 1), now, rng,
                          std::span<SimTimeNs>(&read_done, 1));
  tiers_[to]->WritePage(copy, read_done, rng);
  *tier = static_cast<uint8_t>(to);
  lru_[from].Remove(slot);
  // Heat restarts on the new tier (per-residency-epoch signal; see
  // header) - Touch seeds the count at 1.
  lru_[to].Touch(slot);
  const bool promotion = to < from;
  if (counters_ != nullptr) {
    counters_->Add(promotion ? counter::kTierPromotions
                             : counter::kTierDemotions);
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = promotion ? TraceEventKind::kTierPromote
                       : TraceEventKind::kTierDemote;
    e.ts = now;
    e.slot = slot;
    e.host = host_id_;
    e.cls = IoClass::kMigration;
    e.a = static_cast<uint8_t>(from);
    e.b = static_cast<uint8_t>(to);
    trace_->Record(e);
  }
  return true;
}

}  // namespace leap
