// CXL-like intermediate memory tier: a direct-attached backing store with
// load/store-class latency (hundreds of ns), sitting between local DRAM
// and the fabric remote pool in the tier hierarchy. Modeled like the SSD -
// a truncated-normal device with a few independent channels - but an order
// of magnitude faster, so a fast-tier hit costs less than a microsecond
// where a fabric round trip costs ~5 us (the regime the hpides DaMoN'25
// tier study measures prefetch reliability across).
#ifndef LEAP_SRC_TIER_CXL_STORE_H_
#define LEAP_SRC_TIER_CXL_STORE_H_

#include <vector>

#include "src/sim/latency_model.h"
#include "src/storage/backing_store.h"
#include "src/tier/tier_config.h"

namespace leap {

class CxlStore : public BackingStore {
 public:
  explicit CxlStore(const CxlStoreConfig& config = CxlStoreConfig());

  void ReadPages(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                 std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  std::string name() const override { return "cxl"; }
  double MeanReadLatencyNs() const override { return read_.MeanNs(); }

 private:
  size_t ChannelFor(SwapSlot slot) const { return slot % busy_until_.size(); }

  CxlStoreConfig config_;
  LatencyModel read_;
  LatencyModel write_;
  std::vector<SimTimeNs> busy_until_;
};

}  // namespace leap

#endif  // LEAP_SRC_TIER_CXL_STORE_H_
