// Background hot/cold migrator: a kswapd-style self-rescheduling tick on
// the shared EventQueue (the same pattern as kswapd and StatsSampler) that
// keeps the fast tier holding the hot pages.
//
// Each tick, in order:
//   1. every `decay_every_ticks` ticks, halve all access counts (aging);
//   2. collect victims: the CXL tier's recency tail, restricted to pages
//      whose heat is below promote_threshold (a page as hot as the ones
//      we would promote is never demoted - that would be ping-pong);
//   3. watermark demote: drain first-touch placement overshoot (above the
//      high watermark) down to the low watermark, victims only;
//   4. promote by exchange: each remote page at/above promote_threshold
//      takes free fast-tier room, or displaces one victim; when victims
//      run out the fast tier is full of hot pages and migration stops -
//      churn is bounded by the supply of provably-cold pages, not by the
//      batch size;
//   5. optionally sink fully-decayed (count==0) remote pages to the SSD
//      cold floor.
//
// Planning and execution are split: the tick decides every move against a
// simulated occupancy, then schedules the copies spread evenly across the
// period (instead of bursting them at tick time, which would ratchet the
// per-link pacing horizon far forward in one event and stall every later
// background op behind a mostly-idle wire).
//
// All copies go through TieredStore::MigrateSlot as IoClass::kMigration,
// so the fabric's per-link migration bandwidth cap bounds how hard this
// loop can ever lean on the links - demand p99 is protected by
// construction, not by tuning.
//
// Determinism: the migrator owns its own Rng (seeded at construction, so
// a disabled migrator draws nothing from the machine's stream) and runs
// only from event-queue ticks, so same-seed runs migrate identically.
#ifndef LEAP_SRC_TIER_TIER_MIGRATOR_H_
#define LEAP_SRC_TIER_TIER_MIGRATOR_H_

#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/tier/tier_config.h"
#include "src/tier/tiered_store.h"

namespace leap {

class TierMigrator {
 public:
  TierMigrator(const TierConfig& config, EventQueue* events,
               TieredStore* store, uint64_t seed);

  // Arms the first tick at `at`; ticks self-reschedule every
  // migrate_period_ns for as long as the queue is drained.
  void Start(SimTimeNs at);

  uint64_t ticks() const { return ticks_; }

 private:
  void Tick(SimTimeNs now);

  TierConfig config_;
  EventQueue* events_;
  TieredStore* store_;
  Rng rng_;
  uint64_t ticks_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_TIER_TIER_MIGRATOR_H_
