// Tier-aware backing store: routes every page op to the tier the page
// currently lives on and tracks per-page residency + per-tier recency/heat.
//
// The store wraps the ordered hierarchy below DRAM (tier_config.h):
//
//   kTierCxl    - owned CxlStore, capacity-bounded (cxl_capacity_pages)
//   kTierRemote - the host's fabric path (HostAgent), non-owning
//   kTierSsd    - the host's local flash, non-owning
//
// Placement policy: a NEW swap slot is written to the highest tier with
// free capacity (CXL first, spilling to remote when full - counted as
// tier_spills); a rewrite of a known slot stays in place, preserving
// read-your-writes on whatever tier holds the page. Reads are routed by
// residency and never move a page - promotion/demotion is exclusively the
// TierMigrator's job, so the foreground path stays mechanical and the
// migration traffic is the only cross-tier bandwidth consumer.
//
// Hot/cold signal: each tier keeps an LruList<SwapSlot> whose saturating
// access counts (bumped per touch, halved by DecayCounts) double as the
// promotion heat. Counts restart when a page changes tier: heat is a
// per-residency-epoch signal, which is exactly the hysteresis that keeps
// a just-demoted page from bouncing straight back up.
#ifndef LEAP_SRC_TIER_TIERED_STORE_H_
#define LEAP_SRC_TIER_TIERED_STORE_H_

#include <array>
#include <vector>

#include "src/container/flat_map.h"
#include "src/mem/lru_list.h"
#include "src/obs/trace_recorder.h"
#include "src/stats/counters.h"
#include "src/storage/backing_store.h"
#include "src/tier/cxl_store.h"
#include "src/tier/tier_config.h"

namespace leap {

class TieredStore : public BackingStore {
 public:
  // `remote` and `ssd` are non-owning and must outlive the store.
  TieredStore(const TierConfig& config, BackingStore* remote,
              BackingStore* ssd);

  // --- BackingStore ------------------------------------------------------
  void ReadPages(std::span<const IoRequest> reqs, SimTimeNs now, Rng& rng,
                 std::span<SimTimeNs> ready_at) override;
  SimTimeNs WritePage(const IoRequest& req, SimTimeNs now, Rng& rng) override;
  std::string name() const override { return "tiered"; }
  // Reporting latency is the remote tier's: at steady state the bulk of
  // the footprint lives there, and the fast tier is the part the migrator
  // is trying to make not matter.
  double MeanReadLatencyNs() const override {
    return remote_->MeanReadLatencyNs();
  }

  void SetCounters(Counters* counters) { counters_ = counters; }
  void SetTrace(TraceRecorder* trace, uint32_t host_id) {
    trace_ = trace;
    host_id_ = host_id;
  }

  // --- migrator interface ------------------------------------------------
  size_t TierPages(size_t tier) const { return lru_[tier].size(); }
  size_t FastCapacityPages() const { return config_.cxl_capacity_pages; }
  // Tier currently holding `slot`; kTierCount when the slot is unknown.
  size_t TierOf(SwapSlot slot) const;
  uint32_t AccessCount(size_t tier, SwapSlot slot) const {
    return lru_[tier].AccessCount(slot);
  }
  std::vector<SwapSlot> HottestOf(size_t tier, size_t n) const {
    return lru_[tier].HottestN(n);
  }
  std::vector<SwapSlot> ColdestOf(size_t tier, size_t n) const {
    return lru_[tier].ColdestN(n);
  }
  // Halves every access count on every tier (the migrator's aging step).
  void DecayCounts();

  // Copies `slot` from tier `from` to tier `to` as IoClass::kMigration
  // traffic (device + fabric occupancy modeled on both ends; remote legs
  // ride the per-link migration bandwidth cap), then flips residency.
  // Returns false - and moves nothing - when the slot is not on `from` or
  // the destination fast tier is full.
  bool MigrateSlot(SwapSlot slot, size_t from, size_t to, SimTimeNs now,
                   Rng& rng);

  const TierConfig& config() const { return config_; }

 private:
  size_t PlaceNewSlot(SwapSlot slot);

  TierConfig config_;
  CxlStore cxl_;
  BackingStore* remote_;
  BackingStore* ssd_;
  std::array<BackingStore*, kTierCount> tiers_;
  FlatMap<SwapSlot, uint8_t> residency_;
  std::array<LruList<SwapSlot>, kTierCount> lru_;
  Counters* counters_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  uint32_t host_id_ = 0;
};

}  // namespace leap

#endif  // LEAP_SRC_TIER_TIERED_STORE_H_
